//! Differential oracle for the matching index: linear scan, grid, and
//! the hybrid covering/interval index must produce identical verified
//! match sets on arbitrary repositories, queries, and mutation
//! histories — and the network-level index mode must be digest-neutral.
//!
//! This is the equivalence proof the index-shape bench axis stands on:
//! the index only prunes candidates (every survivor is exactly
//! verified), so swapping structures can move timings and scan counts
//! but never a delivery.

use hypersub_core::index::IndexMode;
use hypersub_core::prelude::*;
use hypersub_core::repo::{StoredSub, ZoneRepo};
use hypersub_tests::test_network;
use proptest::prelude::*;

fn sid(n: u64) -> SubId {
    SubId {
        nid: n,
        iid: (n % 3) as u32,
    }
}

/// A 2-D rect inside [0, 100]^2 with sides up to 40 wide; occasionally
/// degenerate (zero width) because `lo == hi` is legal geometry.
fn arb_rect2() -> impl Strategy<Value = Rect> {
    (0.0f64..100.0, 0.0f64..100.0, 0.0f64..40.0, 0.0f64..40.0).prop_map(|(x, y, wx, wy)| {
        Rect::new(vec![x, y], vec![(x + wx).min(100.0), (y + wy).min(100.0)])
    })
}

/// One repository mutation: insert/overwrite an id, refresh it with the
/// identical rect, or remove it. Ids are drawn from a small pool so the
/// same id is hit repeatedly (re-insert and remove-then-reinsert paths).
#[derive(Clone, Debug)]
enum Op {
    Insert(u64, Rect, bool),
    Refresh(u64),
    Remove(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0u64..200, arb_rect2(), 0u32..10, any::<bool>()).prop_map(|(id, r, kind, real)| match kind {
        0 => Op::Remove(id),
        1 => Op::Refresh(id),
        _ => Op::Insert(id, r, real),
    })
}

fn stored(r: &Rect, real: bool) -> StoredSub {
    if real {
        StoredSub::Real {
            full: r.clone(),
            proj: r.clone(),
        }
    } else {
        StoredSub::Surrogate { proj: r.clone() }
    }
}

/// Applies the same mutation history to one repo per index mode, then
/// compares `match_point` across all three after every query — matching
/// through an index must be indistinguishable from the linear scan.
fn assert_modes_agree(ops: &[Op], queries: &[(f64, f64)], queries_between: bool) {
    let modes = [IndexMode::Linear, IndexMode::Grid, IndexMode::Hybrid];
    let mut repos: Vec<ZoneRepo> = (0..modes.len()).map(|_| ZoneRepo::new(1)).collect();
    let mut last_rect: std::collections::HashMap<u64, (Rect, bool)> = Default::default();
    for (step, op) in ops.iter().enumerate() {
        for repo in &mut repos {
            match op {
                Op::Insert(id, r, real) => {
                    repo.insert(sid(*id), stored(r, *real));
                }
                Op::Refresh(id) => {
                    if let Some((r, real)) = last_rect.get(id) {
                        repo.insert(sid(*id), stored(r, *real));
                    }
                }
                Op::Remove(id) => {
                    repo.remove(&sid(*id));
                }
            }
        }
        if let Op::Insert(id, r, real) = op {
            last_rect.insert(*id, (r.clone(), *real));
        }
        // Query mid-history too: indexes are built lazily and mutated
        // incrementally, so agreement must hold at every drift state,
        // not just at the end.
        if queries_between && step % 7 == 0 {
            let p = Point(vec![(step * 13 % 100) as f64, (step * 31 % 100) as f64]);
            compare_all(&mut repos, &modes, &p);
        }
    }
    for &(x, y) in queries {
        compare_all(&mut repos, &modes, &Point(vec![x, y]));
    }
}

fn compare_all(repos: &mut [ZoneRepo], modes: &[IndexMode], p: &Point) {
    let oracle = repos[0].match_point(p, p, modes[0]);
    for (repo, &mode) in repos.iter_mut().zip(modes).skip(1) {
        let got = repo.match_point(p, p, mode);
        assert_eq!(
            got, oracle,
            "{mode:?} diverged from linear scan at {:?}",
            p.0
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// The differential oracle: arbitrary insert/refresh/remove
    /// histories long enough to cross the build threshold and the drift
    /// rebuild, queried mid-history and at the end — linear, grid, and
    /// hybrid agree on every match set.
    #[test]
    fn prop_index_modes_are_match_equivalent(
        ops in prop::collection::vec(arb_op(), 1..260),
        queries in prop::collection::vec((0.0f64..=100.0, 0.0f64..=100.0), 1..12),
    ) {
        assert_modes_agree(&ops, &queries, true);
    }

    /// Superset-under-mutation: after any history, every entry whose
    /// rect contains the query point appears in the indexed result (the
    /// candidate pass may over-approximate but never drops a match).
    #[test]
    fn prop_hybrid_candidates_superset_under_mutation(
        ops in prop::collection::vec(arb_op(), 80..200),
        queries in prop::collection::vec((0.0f64..=100.0, 0.0f64..=100.0), 1..10),
    ) {
        let mut repo = ZoneRepo::new(1);
        let mut last_rect: std::collections::HashMap<u64, (Rect, bool)> = Default::default();
        for op in &ops {
            match op {
                Op::Insert(id, r, real) => {
                    repo.insert(sid(*id), stored(r, *real));
                    last_rect.insert(*id, (r.clone(), *real));
                }
                Op::Refresh(id) => {
                    if let Some((r, real)) = last_rect.get(id) {
                        repo.insert(sid(*id), stored(r, *real));
                    }
                }
                Op::Remove(id) => {
                    repo.remove(&sid(*id));
                }
            }
        }
        for &(x, y) in &queries {
            let p = Point(vec![x, y]);
            let got = repo.match_point(&p, &p, IndexMode::Hybrid);
            let mut expect: Vec<SubId> = repo
                .entries
                .iter()
                .filter(|(_, s)| match s {
                    StoredSub::Real { full, .. } => full.contains_point(&p),
                    StoredSub::Surrogate { proj } => proj.contains_point(&p),
                })
                .map(|(&id, _)| id)
                .collect();
            expect.sort_unstable();
            prop_assert_eq!(got, expect, "hybrid dropped or invented a match");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6, // each case runs three full network simulations
        .. ProptestConfig::default()
    })]

    /// Network-level equivalence: the same workload run under every
    /// index mode produces bit-identical run digests (delivery trace +
    /// network counters). Subscriptions are dense enough that zone
    /// repositories cross the build threshold and actually exercise the
    /// indexed paths.
    #[test]
    fn prop_index_mode_is_digest_neutral(
        rects in prop::collection::vec(arb_rect2(), 60..120),
        points in prop::collection::vec((0.0f64..=100.0, 0.0f64..=100.0), 2..8),
        nodes in 6usize..14,
        seed in 0u64..500,
    ) {
        let run = |mode: IndexMode| {
            let cfg = SystemConfig::default().with_index_mode(mode);
            let mut net = test_network(nodes, seed, cfg);
            for (i, r) in rects.iter().enumerate() {
                net.subscribe(i % nodes, 0, Subscription::new(r.clone()));
            }
            net.run_to_quiescence();
            for (i, &(x, y)) in points.iter().enumerate() {
                net.publish((i * 7) % nodes, 0, Point(vec![x, y])).unwrap();
            }
            net.run_to_quiescence();
            (net.run_digest(), net.steps())
        };
        let linear = run(IndexMode::Linear);
        prop_assert_eq!(run(IndexMode::Grid), linear, "grid changed the run");
        prop_assert_eq!(run(IndexMode::Hybrid), linear, "hybrid changed the run");
    }
}
