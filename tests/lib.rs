//! Support crate for the workspace-level integration tests.
//!
//! The tests themselves live in sibling `.rs` files registered as
//! `[[test]]` targets in `Cargo.toml`; shared helpers live here.

use hypersub_core::prelude::*;

/// Builds a small single-scheme network for integration testing: a
/// 2-attribute `[0,100]^2` scheme on `nodes` nodes with uniform 10 ms
/// links.
pub fn test_network(nodes: usize, seed: u64, config: SystemConfig) -> Network {
    let scheme = SchemeDef::builder("itest")
        .attribute("x", 0.0, 100.0)
        .attribute("y", 0.0, 100.0)
        .build(0);
    Network::builder(nodes)
        .registry(Registry::new(vec![scheme]))
        .config(config)
        .seed(seed)
        .build()
        .expect("valid test network")
}
