//! Integration tests for §4's load-balancing mechanisms: zone-mapping
//! rotation and dynamic subscription migration, including correctness of
//! delivery through migrated state.

use hypersub_core::advanced::SimAccess;
use hypersub_core::prelude::*;
use hypersub_tests::test_network;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A workload skewed onto one hot value so one surrogate node collects
/// almost all subscriptions.
fn skewed_subscribe(net: &mut Network, count: usize, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let nodes = net.len();
    for _ in 0..count {
        let node = rng.gen_range(0..nodes);
        let c = rng.gen_range(40.0..41.0); // hot sliver of the domain
        let sub = Subscription::new(Rect::new(vec![c, 0.0], vec![(c + 0.5).min(100.0), 100.0]));
        net.subscribe(node, 0, sub);
    }
}

#[test]
fn migration_reduces_max_load_and_keeps_delivery_exact() {
    // Without LB.
    let mut plain = test_network(32, 41, SystemConfig::default());
    skewed_subscribe(&mut plain, 300, 9);
    plain.run_to_quiescence();
    let max_plain = plain.node_loads().into_iter().max().unwrap();

    // With LB: same workload, let several rounds run.
    let mut lb = test_network(32, 41, SystemConfig::default().with_lb());
    skewed_subscribe(&mut lb, 300, 9);
    lb.run_until(lb.time() + SimTime::from_secs(300));
    let loads = lb.node_loads();
    let max_lb = loads.iter().copied().max().unwrap();
    let migrated: u64 = lb.nodes().iter().map(|n| n.lb.migrated_out).sum();

    assert!(migrated > 0, "skew must trigger migration");
    assert!(
        max_lb < max_plain,
        "migration must cut the hottest node's load: {max_lb} !< {max_plain}"
    );
    // Total stored subscriptions conserved.
    assert_eq!(
        loads.iter().sum::<u64>(),
        300,
        "no subscription may be lost or duplicated by migration"
    );

    // Delivery through migrated state stays exact.
    let mut rng = SmallRng::seed_from_u64(77);
    for _ in 0..30 {
        // Events in the hot region (matching many migrated subs) and out.
        let x = if rng.gen_bool(0.7) {
            rng.gen_range(40.0..41.5)
        } else {
            rng.gen_range(0.0..100.0)
        };
        let p = Point(vec![x, rng.gen_range(0.0..100.0)]);
        lb.publish(rng.gen_range(0..32), 0, p).unwrap();
    }
    lb.run_until(lb.time() + SimTime::from_secs(120));
    for s in lb.event_stats() {
        assert_eq!(
            s.delivered, s.expected,
            "event {} through migrated state",
            s.event
        );
        assert_eq!(s.duplicates, 0);
    }
}

#[test]
fn rotation_spreads_multi_scheme_roots() {
    // Two registries: 3 identical schemes with and without rotation.
    let build = |rotation: bool| {
        let schemes: Vec<SchemeDef> = (0..3)
            .map(|i| {
                let mut b = SchemeDef::builder(&format!("s{i}"))
                    .attribute("x", 0.0, 100.0)
                    .attribute("y", 0.0, 100.0);
                if !rotation {
                    b = b.without_rotation();
                }
                b.build(i as u32)
            })
            .collect();
        Network::builder(32)
            .registry(Registry::new(schemes))
            .config(SystemConfig::default())
            .seed(55)
            .build()
            .expect("valid test network")
    };
    // Boundary-straddling subscriptions map to the (shallow) root-side
    // zones of each scheme.
    let straddler = || Subscription::new(Rect::new(vec![49.0, 49.0], vec![51.0, 51.0]));
    let max_load = |rotation: bool| {
        let mut net = build(rotation);
        for scheme in 0..3u32 {
            for node in 0..32 {
                net.subscribe(node, scheme, straddler());
            }
        }
        net.run_to_quiescence();
        net.node_loads().into_iter().max().unwrap()
    };
    let with_rot = max_load(true);
    let without = max_load(false);
    assert!(
        with_rot < without,
        "rotation must spread identical zones of different schemes: \
         max {with_rot} (rot) !< {without} (no rot)"
    );
}

#[test]
fn high_capacity_node_tolerates_more_load() {
    // Same skewed workload twice; in the second run the hot node gets a
    // huge capacity, so it must keep (much of) its load.
    let hot_node_and_migrated = |capacity: Option<f64>| {
        let mut net = test_network(32, 41, SystemConfig::default().with_lb());
        skewed_subscribe(&mut net, 300, 9);
        net.run_until(net.time() + SimTime::from_secs(5));
        if let Some(cap) = capacity {
            // Find the (single) hot surrogate and raise its capacity.
            let hot = (0..32)
                .max_by_key(|&i| net.nodes()[i].load())
                .expect("nonempty");
            net.sim_mut().node_mut(hot).capacity = cap;
        }
        net.run_until(net.time() + SimTime::from_secs(300));
        net.nodes().iter().map(|n| n.lb.migrated_out).sum::<u64>()
    };
    let migrated_baseline = hot_node_and_migrated(None);
    let migrated_capped = hot_node_and_migrated(Some(100.0));
    assert!(migrated_baseline > 0);
    assert!(
        migrated_capped * 2 < migrated_baseline,
        "high capacity should suppress migration: {migrated_capped} vs {migrated_baseline}"
    );
}

#[test]
fn lb_disabled_never_migrates() {
    let mut net = test_network(24, 43, SystemConfig::default());
    skewed_subscribe(&mut net, 120, 3);
    net.run_until(net.time() + SimTime::from_secs(120));
    let migrated: u64 = net.nodes().iter().map(|n| n.lb.migrated_out).sum();
    assert_eq!(migrated, 0);
}

/// Flight-recorder version of the convergence property: migration
/// activity must die out after a bounded number of LB rounds, proven from
/// the trace itself rather than from end-state counters.
#[test]
fn trace_shows_migration_converges_within_k_rounds() {
    let mut net = test_network(32, 41, SystemConfig::default().with_lb());
    net.enable_recording(1 << 20);
    skewed_subscribe(&mut net, 300, 9);
    // 30 LB periods (period = 30 s) — far more than convergence needs.
    net.run_until(net.time() + SimTime::from_secs(900));

    let rec = net.recorder().expect("recording enabled");
    assert_eq!(rec.evicted(), 0, "trace must fit the ring buffer");
    let times_of = |kind: &str| {
        rec.iter()
            .filter(|r| r.event.kind() == kind)
            .map(|r| r.time)
            .collect::<Vec<_>>()
    };
    let offers = times_of("lb.offer");
    let acks = times_of("lb.migrate_ack");
    assert!(!offers.is_empty(), "skew must trigger migration offers");
    assert!(!acks.is_empty(), "offers must complete into acked handoffs");

    // Convergence: the last migration activity happens within k = 9 LB
    // periods of the first offer, even though 30 periods ran — the tail
    // 20 rounds are provably silent.
    let period = SystemConfig::default().with_lb().lb.period;
    let first = *offers.first().unwrap();
    let last = offers.iter().chain(acks.iter()).copied().max().unwrap();
    let k = 9u64;
    assert!(
        last.saturating_sub(first) <= SimTime(period.0 * k),
        "migration must converge within {k} LB rounds: first {first}, last {last}"
    );

    // The trace agrees with the metrics registry: every acked handoff in
    // the trace is accounted by the migrated-subscriptions counter.
    let migrated_metric = net.metrics().proto.migrated_subs.total();
    let migrated_nodes: u64 = net.nodes().iter().map(|n| n.lb.migrated_out).sum();
    assert!(migrated_metric > 0);
    assert_eq!(migrated_metric, migrated_nodes);
}
