//! Fault-plane integration tests: timed network partitions and uniform
//! message loss against a 64-node HyperSub network.
//!
//! These are the acceptance scenarios for the fault-injection plane and
//! the ack/retry protocol layer:
//!
//! * a 30-simulated-second bisection of the ring silently drops cross-cut
//!   traffic, heals on schedule, and the soft-state leases re-install the
//!   lost registrations within a couple of periods — restoring complete,
//!   duplicate-free delivery with no global refresh;
//! * 1% uniform loss with retries enabled still delivers ≥ 99% of the
//!   expected `(event, subscriber)` pairs with zero duplicates, while the
//!   same scenario with retries disabled measurably degrades;
//! * identical seeds and fault policies replay to identical per-event
//!   statistics and network counters.

use hypersub_core::prelude::*;
use hypersub_simnet::{FaultPlane, LinkPolicy, NetStats};
use hypersub_tests::test_network;

const NODES: usize = 64;

/// Node `i`'s subscription: a 25-wide x-band (full y), staggered so every
/// event matches a substantial, position-dependent subset of nodes.
fn rect_for(i: usize) -> Rect {
    let lo = ((i * 7) % 75) as f64;
    Rect::new(vec![lo, 0.0], vec![lo + 25.0, 100.0])
}

fn point_for(p: usize) -> Point {
    Point(vec![((p * 17) % 100) as f64, ((p * 31) % 100) as f64])
}

#[test]
fn bisection_heals_and_delivery_completes() {
    let mut net = test_network(
        NODES,
        42,
        SystemConfig::default().with_retries().with_self_healing(),
    );

    // Pre-partition subscriptions register on the healthy network.
    for i in 0..48 {
        net.subscribe(i, 0, Subscription::new(rect_for(i)));
    }
    net.run_until(net.time() + SimTime::from_secs(10));

    // Bisect: nodes 0..32 vs 32..64 for 30 simulated seconds.
    let t0 = net.time();
    let heal = t0 + SimTime::from_secs(30);
    let mut fp = FaultPlane::new(7);
    fp.add_partition(0..32, t0, heal);
    net.install_fault_plane(fp);

    // Subscriptions made *during* the partition: cross-cut registrations
    // are lost even after retries (the backoff chain exhausts well within
    // the 30 s window).
    for i in 48..64 {
        net.subscribe(i, 0, Subscription::new(rect_for(i)));
    }
    // Publishes during the partition under-deliver: cross-cut hops drop.
    let during: Vec<u64> = (0..8)
        .map(|p| {
            net.schedule_publish(t0 + SimTime::from_secs(2), (p * 5) % NODES, 0, point_for(p))
                .unwrap()
        })
        .collect();
    net.run_until(heal);

    // Healed: each subscriber's lease re-pushes its registrations on the
    // next tick, so a window of a few periods restores everything the
    // partition ate — then new publishes must reach the full match set.
    net.run_until(heal + SimTime::from_secs(15));
    let after: Vec<u64> = (0..8)
        .map(|p| {
            net.publish((p * 11 + 3) % NODES, 0, point_for(p + 100))
                .unwrap()
        })
        .collect();
    net.run_until(net.time() + SimTime::from_secs(15));

    let stats = net.event_stats();
    let sum = |ids: &[u64]| {
        ids.iter()
            .map(|id| {
                let s = stats.iter().find(|s| s.event == *id).unwrap();
                (s.delivered, s.expected, s.duplicates)
            })
            .fold((0, 0, 0), |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2))
    };

    let (del_during, exp_during, _) = sum(&during);
    assert!(
        del_during < exp_during,
        "a 30 s bisection must lose some cross-cut deliveries \
         ({del_during}/{exp_during} delivered)"
    );

    let (del_after, exp_after, dup_after) = sum(&after);
    assert!(exp_after > 0, "post-heal events must have expected matches");
    assert_eq!(
        del_after, exp_after,
        "after heal + lease re-push, delivery must be complete"
    );
    assert_eq!(dup_after, 0, "no duplicate deliveries after heal");

    assert!(
        net.net().partition_dropped() > 0,
        "the partition must have dropped cross-cut messages"
    );
}

/// Builds the 64-node 1%-uniform-loss scenario and returns
/// `(delivered, expected, duplicates)` pair totals plus the raw outputs.
fn lossy_scenario(retries: bool) -> (usize, usize, usize, Vec<EventStats>, NetStats) {
    let config = if retries {
        SystemConfig::default().with_retries()
    } else {
        SystemConfig::default()
    };
    let mut net = test_network(NODES, 1234, config);
    let mut fp = FaultPlane::new(99);
    fp.set_global_policy(LinkPolicy::loss(0.01));
    net.install_fault_plane(fp);

    for i in 0..NODES {
        net.subscribe(i, 0, Subscription::new(rect_for(i)));
    }
    net.run_to_quiescence();
    for p in 0..20 {
        net.publish((p * 7) % NODES, 0, point_for(p)).unwrap();
    }
    net.run_to_quiescence();

    let stats = net.event_stats();
    let (del, exp, dup) = stats
        .iter()
        .map(|s| (s.delivered, s.expected, s.duplicates))
        .fold((0, 0, 0), |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2));
    let net_stats = net.net().clone();
    (del, exp, dup, stats, net_stats)
}

#[test]
fn one_percent_loss_with_retries_delivers_99_percent() {
    let (del, exp, dup, _, net_stats) = lossy_scenario(true);
    assert!(
        exp > 100,
        "scenario too small to be meaningful: {exp} pairs"
    );
    assert!(
        del * 100 >= exp * 99,
        "with retries, ≥99% of pairs must deliver ({del}/{exp})"
    );
    assert_eq!(dup, 0, "retransmissions must not cause duplicates");
    assert!(
        net_stats.fault_dropped() > 0,
        "the loss policy must actually have dropped messages"
    );
}

#[test]
fn one_percent_loss_without_retries_measurably_degrades() {
    let (del_nr, exp, _, _, _) = lossy_scenario(false);
    let (del_r, exp_r, _, _, _) = lossy_scenario(true);
    assert_eq!(exp, exp_r, "same workload, same oracle");
    assert!(
        del_nr < exp,
        "without retries, 1% loss must lose some pairs ({del_nr}/{exp})"
    );
    assert!(
        del_r > del_nr,
        "retries must deliver strictly more pairs ({del_r} vs {del_nr})"
    );
}

/// Flight-recorder version of the heal guarantee: record the post-heal
/// window and assert *from the trace itself* that nothing was dropped
/// after the partition lifted, while deliveries demonstrably flowed.
#[test]
fn trace_shows_no_drops_after_heal() {
    let mut net = test_network(
        NODES,
        42,
        SystemConfig::default().with_retries().with_self_healing(),
    );
    for i in 0..NODES {
        net.subscribe(i, 0, Subscription::new(rect_for(i)));
    }
    net.run_until(net.time() + SimTime::from_secs(10));

    let t0 = net.time();
    let heal = t0 + SimTime::from_secs(30);
    let mut fp = FaultPlane::new(7);
    fp.add_partition(0..32, t0, heal);
    net.install_fault_plane(fp);
    for p in 0..8 {
        net.schedule_publish(t0 + SimTime::from_secs(2), (p * 5) % NODES, 0, point_for(p))
            .unwrap();
    }
    net.run_until(heal);
    // Leases repair the soft state the partition ate; give them a couple
    // of periods before starting the recorded window.
    net.run_until(heal + SimTime::from_secs(15));

    // Record only the healed window.
    net.enable_recording(1 << 16);
    for p in 0..8 {
        net.publish((p * 11 + 3) % NODES, 0, point_for(p + 100))
            .unwrap();
    }
    net.run_until(net.time() + SimTime::from_secs(10));

    let rec = net.recorder().expect("recording enabled");
    assert_eq!(rec.evicted(), 0, "window must fit the ring buffer");
    let count = |kind: &str| {
        rec.kind_counts()
            .iter()
            .find(|&&(k, _)| k == kind)
            .map_or(0, |&(_, c)| c)
    };
    assert_eq!(
        count("net.drop_partition"),
        0,
        "no message may hit a partition after heal"
    );
    assert_eq!(count("net.drop_loss"), 0, "no loss policy is installed");
    assert_eq!(count("net.drop_dead"), 0, "no node is down");
    assert!(
        count("delivery.local") > 0,
        "subscribers must receive events in the recorded window"
    );
    assert!(count("net.deliver") > 0);
    assert!(
        rec.iter().all(|r| r.time >= heal),
        "every recorded event postdates the heal"
    );
}

#[test]
fn same_seed_and_fault_policy_replays_identically() {
    let (_, _, _, stats_a, net_a) = lossy_scenario(true);
    let (_, _, _, stats_b, net_b) = lossy_scenario(true);
    assert_eq!(stats_a, stats_b, "event stats must replay identically");
    assert_eq!(net_a, net_b, "network counters must replay identically");
}
