//! Cross-crate property-based tests: for arbitrary workloads, the
//! delivered set equals the brute-force matched set, on arbitrary ring
//! sizes and zone bases.

use hypersub_core::prelude::*;
use hypersub_simnet::{FaultPlane, LinkPolicy};
use hypersub_tests::test_network;
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0.0f64..100.0, 0.0f64..100.0, 0.0f64..25.0, 0.0f64..25.0).prop_map(|(x, y, wx, wy)| {
        Rect::new(
            vec![
                x.min(100.0 - wx.min(99.0)).max(0.0),
                y.min(100.0 - wy.min(99.0)).max(0.0),
            ],
            vec![(x + wx).min(100.0), (y + wy).min(100.0)],
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case runs a full network simulation
        .. ProptestConfig::default()
    })]

    #[test]
    fn prop_delivered_equals_bruteforce(
        rects in prop::collection::vec(arb_rect(), 1..20),
        points in prop::collection::vec((0.0f64..=100.0, 0.0f64..=100.0), 1..8),
        nodes in 8usize..40,
        base4 in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let config = if base4 { SystemConfig::base4() } else { SystemConfig::default() };
        let mut net = test_network(nodes, seed, config);
        for (i, r) in rects.iter().enumerate() {
            net.subscribe(i % nodes, 0, Subscription::new(r.clone()));
        }
        net.run_to_quiescence();
        for (i, &(x, y)) in points.iter().enumerate() {
            let p = Point(vec![x, y]);
            net.publish((i * 7) % nodes, 0, p).unwrap();
        }
        net.run_to_quiescence();
        for s in net.event_stats() {
            prop_assert_eq!(s.delivered, s.expected, "event {}", s.event);
            prop_assert_eq!(s.duplicates, 0);
        }
    }

    #[test]
    fn prop_bandwidth_and_hops_bounded(
        seed in 0u64..500,
        nodes in 8usize..48,
    ) {
        let mut net = test_network(nodes, seed, SystemConfig::default());
        net.subscribe(0, 0, Subscription::new(Rect::new(vec![0.0, 0.0], vec![100.0, 100.0])));
        net.run_to_quiescence();
        let ev = net.publish(nodes - 1, 0, Point(vec![50.0, 50.0])).unwrap();
        net.run_to_quiescence();
        let stats = net.event_stats();
        let s = stats.iter().find(|s| s.event == ev).unwrap();
        prop_assert_eq!(s.delivered, 1);
        // Greedy Chord routing halves distance each hop: even with the
        // zone-tree climb the path is O(log^2 n) at worst, far below n.
        prop_assert!(s.max_hops as usize <= 4 * 64, "hops {}", s.max_hops);
        prop_assert!(s.bandwidth_bytes > 0);
    }

    /// Under ≤1% uniform loss with retries enabled, delivery stays ≥99%
    /// complete and duplicate-free: the backoff chain (5 attempts over
    /// ~7.75 s) makes residual per-hop failure astronomically unlikely.
    #[test]
    fn prop_loss_with_retries_delivers(
        rects in prop::collection::vec(arb_rect(), 4..16),
        points in prop::collection::vec((0.0f64..=100.0, 0.0f64..=100.0), 1..6),
        nodes in 8usize..24,
        seed in 0u64..500,
        drop_pct in 1u32..=10, // 0.1%..1.0%
    ) {
        let mut net = test_network(nodes, seed, SystemConfig::default().with_retries());
        let mut fp = FaultPlane::new(seed ^ 0xfa51);
        fp.set_global_policy(LinkPolicy::loss(drop_pct as f64 / 1000.0));
        net.install_fault_plane(fp);
        for (i, r) in rects.iter().enumerate() {
            net.subscribe(i % nodes, 0, Subscription::new(r.clone()));
        }
        net.run_to_quiescence();
        for (i, &(x, y)) in points.iter().enumerate() {
            net.publish((i * 7) % nodes, 0, Point(vec![x, y])).unwrap();
        }
        net.run_to_quiescence();
        let (del, exp, dup) = net.event_stats().iter().fold((0, 0, 0), |a, s| {
            (a.0 + s.delivered, a.1 + s.expected, a.2 + s.duplicates)
        });
        prop_assert!(del * 100 >= exp * 99, "delivered {del}/{exp}");
        prop_assert_eq!(dup, 0, "retransmissions must never surface as duplicates");
    }

    /// Fault-injected duplication never surfaces as duplicate deliveries:
    /// the receiver-side seen-cache (retries on) and the per-event
    /// delivery dedup cache (retries off) both absorb copies.
    #[test]
    fn prop_duplication_never_delivers_twice(
        rects in prop::collection::vec(arb_rect(), 4..16),
        points in prop::collection::vec((0.0f64..=100.0, 0.0f64..=100.0), 1..6),
        nodes in 8usize..24,
        seed in 0u64..500,
        dup_prob in 0.05f64..0.3,
        retries in any::<bool>(),
    ) {
        let config = if retries {
            SystemConfig::default().with_retries()
        } else {
            SystemConfig::default()
        };
        let mut net = test_network(nodes, seed, config);
        let mut fp = FaultPlane::new(seed ^ 0xd0b1e);
        fp.set_global_policy(LinkPolicy::duplication(dup_prob));
        net.install_fault_plane(fp);
        for (i, r) in rects.iter().enumerate() {
            net.subscribe(i % nodes, 0, Subscription::new(r.clone()));
        }
        net.run_to_quiescence();
        for (i, &(x, y)) in points.iter().enumerate() {
            net.publish((i * 7) % nodes, 0, Point(vec![x, y])).unwrap();
        }
        net.run_to_quiescence();
        prop_assert!(net.net().duplicated() > 0, "dup policy must have fired");
        for s in net.event_stats() {
            prop_assert_eq!(s.delivered, s.expected, "event {}", s.event);
            prop_assert_eq!(s.duplicates, 0, "event {}", s.event);
        }
    }

    /// Identical seeds and fault policies replay to identical statistics:
    /// the whole stack (simulator, fault plane, retry timers) is
    /// deterministic.
    #[test]
    fn prop_identical_seeds_replay_identically(
        rects in prop::collection::vec(arb_rect(), 2..10),
        nodes in 8usize..24,
        seed in 0u64..500,
        fault_seed in 0u64..500,
    ) {
        let run = || {
            let mut net = test_network(nodes, seed, SystemConfig::default().with_retries());
            let mut fp = FaultPlane::new(fault_seed);
            fp.set_global_policy(
                LinkPolicy::loss(0.02)
                    .with_duplication(0.02)
                    .with_jitter(SimTime::from_millis(5)),
            );
            net.install_fault_plane(fp);
            for (i, r) in rects.iter().enumerate() {
                net.subscribe(i % nodes, 0, Subscription::new(r.clone()));
            }
            net.run_to_quiescence();
            for p in 0..4usize {
                net.publish((p * 5) % nodes, 0, Point(vec![(p * 29 % 100) as f64, 50.0])).unwrap();
            }
            net.run_to_quiescence();
            (net.event_stats(), net.net().clone())
        };
        let (stats_a, net_a) = run();
        let (stats_b, net_b) = run();
        prop_assert_eq!(stats_a, stats_b);
        prop_assert_eq!(net_a, net_b);
    }

    /// The shared-`Arc` event fast path and the deep-cloning reference
    /// path must be observationally identical: same delivery trace, same
    /// network counters, bit for bit (compared via the run digest).
    #[test]
    fn prop_arc_and_owned_event_paths_match(
        rects in prop::collection::vec(arb_rect(), 2..12),
        points in prop::collection::vec((0.0f64..=100.0, 0.0f64..=100.0), 1..6),
        nodes in 8usize..32,
        seed in 0u64..500,
    ) {
        let run = |owned: bool| {
            let mut net = test_network(nodes, seed, SystemConfig::default());
            for (i, r) in rects.iter().enumerate() {
                net.subscribe(i % nodes, 0, Subscription::new(r.clone()));
            }
            net.run_to_quiescence();
            for (i, &(x, y)) in points.iter().enumerate() {
                let p = Point(vec![x, y]);
                if owned {
                    net.publish_owned((i * 7) % nodes, 0, p).unwrap();
                } else {
                    net.publish((i * 7) % nodes, 0, p).unwrap();
                }
                net.run_to_quiescence();
            }
            net.run_digest()
        };
        prop_assert_eq!(run(false), run(true));
    }

    /// The self-healing plane is provably inert while disabled: tweaking
    /// its knobs (replication factor, lease period) without flipping
    /// `enabled` never changes the run digest or the event schedule.
    #[test]
    fn prop_self_healing_off_never_changes_run_digest(
        rects in prop::collection::vec(arb_rect(), 2..12),
        points in prop::collection::vec((0.0f64..=100.0, 0.0f64..=100.0), 1..6),
        nodes in 8usize..32,
        seed in 0u64..500,
        replication in 0usize..8,
        lease_secs in 1u64..30,
    ) {
        let run = |config: SystemConfig| {
            let mut net = test_network(nodes, seed, config);
            for (i, r) in rects.iter().enumerate() {
                net.subscribe(i % nodes, 0, Subscription::new(r.clone()));
            }
            net.run_to_quiescence();
            for (i, &(x, y)) in points.iter().enumerate() {
                net.publish((i * 7) % nodes, 0, Point(vec![x, y])).unwrap();
            }
            net.run_to_quiescence();
            (net.run_digest(), net.steps())
        };
        let mut tweaked = SystemConfig::default();
        tweaked.heal.replication_factor = replication;
        tweaked.heal.lease_period = SimTime::from_secs(lease_secs);
        let (d_a, s_a) = run(SystemConfig::default());
        let (d_b, s_b) = run(tweaked);
        prop_assert_eq!(d_a, d_b, "disabled self-healing must be digest-neutral");
        prop_assert_eq!(s_a, s_b, "disabled self-healing must not add sim events");
    }

    /// The flight recorder is provably digest-neutral: recording an
    /// arbitrary faulty workload never changes the delivery trace or the
    /// network counters, bit for bit.
    #[test]
    fn prop_recording_never_changes_run_digest(
        rects in prop::collection::vec(arb_rect(), 2..12),
        points in prop::collection::vec((0.0f64..=100.0, 0.0f64..=100.0), 1..6),
        nodes in 8usize..32,
        seed in 0u64..500,
        capacity_bits in 4usize..12, // ring capacities 16..4096, incl. overflow
        faulty in any::<bool>(),
    ) {
        let run = |record: bool| {
            let config = if faulty {
                SystemConfig::default().with_retries()
            } else {
                SystemConfig::default()
            };
            let mut net = test_network(nodes, seed, config);
            if record {
                net.enable_recording(1 << capacity_bits);
            }
            if faulty {
                let mut fp = FaultPlane::new(seed ^ 0x0b5e);
                fp.set_global_policy(LinkPolicy::loss(0.01).with_duplication(0.01));
                net.install_fault_plane(fp);
            }
            for (i, r) in rects.iter().enumerate() {
                net.subscribe(i % nodes, 0, Subscription::new(r.clone()));
            }
            net.run_to_quiescence();
            for (i, &(x, y)) in points.iter().enumerate() {
                net.publish((i * 7) % nodes, 0, Point(vec![x, y])).unwrap();
            }
            net.run_to_quiescence();
            let recorded = net.recorder().map(|r| r.recorded()).unwrap_or(0);
            (net.run_digest(), net.steps(), recorded)
        };
        let (d_off, steps_off, rec_off) = run(false);
        let (d_on, steps_on, rec_on) = run(true);
        prop_assert_eq!(d_off, d_on, "recording must be digest-neutral");
        prop_assert_eq!(steps_off, steps_on, "recording must not add sim events");
        prop_assert_eq!(rec_off, 0u64);
        prop_assert!(rec_on > 0, "a real workload must record something");
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 4, // each case runs one adversity scenario twice, end to end
        .. ProptestConfig::default()
    })]

    /// Scenario runs are a pure function of (scenario, seed, tier,
    /// defense): re-running the same configuration reproduces the digest
    /// and every verdict bit for bit, whatever the seed — the property
    /// CI's stamp-and-resume machinery and the golden outcome files both
    /// stand on. (The invariants need not *pass* at arbitrary seeds;
    /// they must merely be the same both times.)
    #[test]
    fn prop_scenario_runs_are_deterministic(
        which in 0usize..hypersub_scenario::Scenario::ALL.len(),
        seed in 0u64..1000,
        defense in any::<bool>(),
    ) {
        use hypersub_scenario::{RunConfig, Scenario};
        let scenario = Scenario::ALL[which];
        let cfg = if defense {
            RunConfig::quick(seed)
        } else {
            RunConfig::quick(seed).without_defense()
        };
        let a = scenario.run(&cfg).expect("first run");
        let b = scenario.run(&cfg).expect("second run");
        prop_assert_eq!(a.digest, b.digest, "digest must be seed-deterministic");
        prop_assert_eq!(a.verdicts, b.verdicts, "verdicts must be seed-deterministic");
        prop_assert_eq!(
            (a.steps, a.published, a.expected, a.delivered, a.duplicates),
            (b.steps, b.published, b.expected, b.delivered, b.duplicates)
        );
    }
}

/// One extra statically-dispatched trait layer over any runtime: protocol
/// code must behave identically however many `NodeRuntime` adapters sit
/// between it and the engine — the contract the live transport's own
/// runtime stands on.
struct Indirect<'a, R>(&'a mut R);

impl<M, W, R: hypersub_simnet::NodeRuntime<M, W>> hypersub_simnet::NodeRuntime<M, W>
    for Indirect<'_, R>
{
    fn me(&self) -> usize {
        self.0.me()
    }
    fn now(&self) -> SimTime {
        self.0.now()
    }
    fn world(&mut self) -> &mut W {
        self.0.world()
    }
    fn rng(&mut self) -> &mut rand::rngs::SmallRng {
        self.0.rng()
    }
    fn send(&mut self, dst: usize, msg: M) {
        self.0.send(dst, msg)
    }
    fn set_timer(&mut self, delay: SimTime, token: u64) {
        self.0.set_timer(delay, token)
    }
    fn tracing(&self) -> bool {
        self.0.tracing()
    }
    fn trace(&mut self, f: impl FnOnce() -> hypersub_simnet::ProtoEvent) {
        self.0.trace(f)
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case runs two full network simulations
        .. ProptestConfig::default()
    })]

    /// The runtime abstraction is semantics-free: driving every subscribe
    /// and publish through an extra `NodeRuntime` adapter layer (doubly
    /// wrapped, statically dispatched) reproduces the plain run's digest
    /// bit for bit. This is the sim-side half of the sim-vs-live parity
    /// argument — the trait boundary itself cannot change behavior.
    #[test]
    fn prop_runtime_abstraction_never_changes_run_digest(
        rects in prop::collection::vec(arb_rect(), 2..10),
        points in prop::collection::vec((0.0f64..=100.0, 0.0f64..=100.0), 1..6),
        nodes in 8usize..32,
        seed in 0u64..500,
    ) {
        use hypersub_core::advanced::SimAccess;

        let direct = {
            let mut net = test_network(nodes, seed, SystemConfig::default());
            for (i, r) in rects.iter().enumerate() {
                net.subscribe(i % nodes, 0, Subscription::new(r.clone()));
            }
            net.run_to_quiescence();
            for (i, &(x, y)) in points.iter().enumerate() {
                net.publish((i * 7) % nodes, 0, Point(vec![x, y])).unwrap();
            }
            net.run_to_quiescence();
            net.run_digest()
        };

        let indirect = {
            let mut net = test_network(nodes, seed, SystemConfig::default());
            for (i, r) in rects.iter().enumerate() {
                let sub = Subscription::new(r.clone());
                net.sim_mut().with_node_ctx(i % nodes, |n, ctx| {
                    n.subscribe(&mut Indirect(&mut Indirect(ctx)), 0, sub)
                });
            }
            net.run_to_quiescence();
            // Mirror Network::publish's id allocation (ids start at 1).
            for (i, &(x, y)) in points.iter().enumerate() {
                let event = Event { id: i as u64 + 1, point: Point(vec![x, y]) };
                net.sim_mut().with_node_ctx((i * 7) % nodes, |n, ctx| {
                    n.publish_event(&mut Indirect(&mut Indirect(ctx)), 0, event)
                });
            }
            net.run_to_quiescence();
            net.run_digest()
        };

        prop_assert_eq!(direct, indirect, "runtime adapters must be digest-neutral");
    }
}
