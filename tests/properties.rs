//! Cross-crate property-based tests: for arbitrary workloads, the
//! delivered set equals the brute-force matched set, on arbitrary ring
//! sizes and zone bases.

use hypersub_core::prelude::*;
use hypersub_tests::test_network;
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (
        0.0f64..100.0,
        0.0f64..100.0,
        0.0f64..25.0,
        0.0f64..25.0,
    )
        .prop_map(|(x, y, wx, wy)| {
            Rect::new(
                vec![x.min(100.0 - wx.min(99.0)).max(0.0), y.min(100.0 - wy.min(99.0)).max(0.0)],
                vec![(x + wx).min(100.0), (y + wy).min(100.0)],
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case runs a full network simulation
        .. ProptestConfig::default()
    })]

    #[test]
    fn prop_delivered_equals_bruteforce(
        rects in prop::collection::vec(arb_rect(), 1..20),
        points in prop::collection::vec((0.0f64..=100.0, 0.0f64..=100.0), 1..8),
        nodes in 8usize..40,
        base4 in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let config = if base4 { SystemConfig::base4() } else { SystemConfig::default() };
        let mut net = test_network(nodes, seed, config);
        for (i, r) in rects.iter().enumerate() {
            net.subscribe(i % nodes, 0, Subscription::new(r.clone()));
        }
        net.run_to_quiescence();
        for (i, &(x, y)) in points.iter().enumerate() {
            let p = Point(vec![x, y]);
            net.publish((i * 7) % nodes, 0, p);
        }
        net.run_to_quiescence();
        for s in net.event_stats() {
            prop_assert_eq!(s.delivered, s.expected, "event {}", s.event);
            prop_assert_eq!(s.duplicates, 0);
        }
    }

    #[test]
    fn prop_bandwidth_and_hops_bounded(
        seed in 0u64..500,
        nodes in 8usize..48,
    ) {
        let mut net = test_network(nodes, seed, SystemConfig::default());
        net.subscribe(0, 0, Subscription::new(Rect::new(vec![0.0, 0.0], vec![100.0, 100.0])));
        net.run_to_quiescence();
        let ev = net.publish(nodes - 1, 0, Point(vec![50.0, 50.0]));
        net.run_to_quiescence();
        let stats = net.event_stats();
        let s = stats.iter().find(|s| s.event == ev).unwrap();
        prop_assert_eq!(s.delivered, 1);
        // Greedy Chord routing halves distance each hop: even with the
        // zone-tree climb the path is O(log^2 n) at worst, far below n.
        prop_assert!(s.max_hops as usize <= 4 * 64, "hops {}", s.max_hops);
        prop_assert!(s.bandwidth_bytes > 0);
    }
}
