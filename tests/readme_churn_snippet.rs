//! Compile-and-run check for the README churn / self-healing snippet.

use hypersub_core::prelude::*;

#[test]
fn readme_churn_snippet_runs() {
    let scheme = SchemeDef::builder("quotes")
        .attribute("price", 0.0, 100.0)
        .attribute("volume", 0.0, 100.0)
        .build(0);
    let mut net = Network::builder(32)
        .registry(Registry::new(vec![scheme]))
        .config(SystemConfig::default().with_self_healing())
        .seed(7)
        .build()
        .expect("valid configuration");
    net.enable_maintenance();

    net.subscribe(
        3,
        0,
        Subscription::new(Rect::new(vec![10.0, 0.0], vec![20.0, 100.0])),
    );
    net.run_until(net.time() + SimTime::from_secs(10));

    // Kill a node. Stabilization heals the ring; the dead node's successor
    // promotes its replicated subscription state; leases re-push the rest.
    net.fail(20).expect("node 20 is alive");
    net.run_until(net.time() + SimTime::from_secs(40));

    net.publish(5, 0, Point(vec![15.0, 42.0])).unwrap();
    net.run_until(net.time() + SimTime::from_secs(10));

    let s = &net.event_stats()[0];
    assert_eq!(s.delivered, s.expected);
    assert_eq!(s.duplicates, 0);
}
