//! Compile-and-run check for the README fault-injection snippet.

use hypersub_core::prelude::*;
use hypersub_simnet::{FaultPlane, LinkPolicy};

#[test]
fn readme_fault_snippet_runs() {
    let scheme = SchemeDef::builder("quotes")
        .attribute("price", 0.0, 100.0)
        .attribute("volume", 0.0, 100.0)
        .build(0);
    let mut net = Network::builder(64)
        .registry(Registry::new(vec![scheme]))
        .config(SystemConfig::default().with_retries().with_self_healing())
        .seed(7)
        .build()
        .expect("valid configuration");

    let mut faults = FaultPlane::new(99);
    faults.set_global_policy(
        LinkPolicy::loss(0.01)
            .with_duplication(0.005)
            .with_jitter(SimTime::from_millis(20)),
    );
    faults.add_partition(0..32, net.time(), net.time() + SimTime::from_secs(30));
    net.install_fault_plane(faults);

    net.subscribe(
        3,
        0,
        Subscription::new(Rect::new(vec![10.0, 0.0], vec![20.0, 100.0])),
    );
    // Run past the partition's end: the soft-state lease re-installs
    // anything the cut ate — no global refresh needed.
    net.run_until(net.time() + SimTime::from_secs(45));
    net.publish(40, 0, Point(vec![15.0, 42.0])).unwrap();
    net.run_until(net.time() + SimTime::from_secs(10));

    let s = &net.event_stats()[0];
    assert_eq!(s.delivered, s.expected);
    assert_eq!(s.duplicates, 0);
}
