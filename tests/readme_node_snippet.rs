//! Compile-and-run check for the README "Running real nodes" snippet:
//! two live `HyperSubNode`s over loopback TCP — the exact protocol code
//! the simulator tests — join into a ring, subscribe, publish, and
//! deliver across processes' worth of real sockets.

use hypersub_chord::{builder::random_ids, ChordState};
use hypersub_core::prelude::*;
use hypersub_core::{msg::HyperMsg, world::HyperWorld};
use hypersub_net::driver::{spawn, LiveConfig};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[test]
fn readme_node_snippet_runs() {
    let registry = Arc::new(Registry::new(vec![SchemeDef::builder("demo")
        .attribute("x", 0.0, 100.0)
        .attribute("y", 0.0, 100.0)
        .build(0)]));
    let listeners: Vec<TcpListener> = (0..2)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let peers: Vec<_> = listeners.iter().map(|l| l.local_addr().unwrap()).collect();
    let ids = random_ids(2, 42);

    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let mut node = HyperSubNode::new(
                ChordState::new(ids[i], i, 16),
                Arc::clone(&registry),
                Arc::new(SystemConfig::default()),
            );
            node.maintenance = true;
            spawn(
                node,
                HyperWorld::default(),
                listener,
                LiveConfig {
                    index: i,
                    peers: peers.clone(),
                    seed: 42,
                },
            )
        })
        .collect();

    // Both nodes arm maintenance; node 1 joins node 0's singleton ring.
    for (i, h) in handles.iter().enumerate() {
        h.invoke(move |node, ctx| {
            ctx.set_timer(
                hypersub_chord::proto::STABILIZE_PERIOD,
                hypersub_core::node::TOKEN_STABILIZE,
            );
            ctx.set_timer(
                hypersub_chord::proto::FIX_FINGERS_PERIOD,
                hypersub_core::node::TOKEN_FIX_FINGERS,
            );
            if i != 0 {
                for (dst, m) in node.maint.start_join(0) {
                    ctx.send(dst, HyperMsg::Chord(m));
                }
            }
        });
    }

    // Wait for stabilization: each node knows the other as successor and
    // predecessor.
    let deadline = Instant::now() + Duration::from_secs(30);
    for h in &handles {
        loop {
            let ready = h.query(|node, _ctx| {
                let c = node.chord();
                c.successor().is_some() && c.predecessor.is_some()
            });
            if ready {
                break;
            }
            assert!(Instant::now() < deadline, "ring did not stabilize");
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    // Subscribe on node 1, publish a matching event from node 0.
    let sub = Rect::new(vec![10.0, 10.0], vec![30.0, 30.0]);
    let subid = handles[1].query(move |node, ctx| node.subscribe(ctx, 0, Subscription::new(sub)));
    assert_eq!(subid.nid, ids[1]);

    // Each publish uses a fresh event id (ids are globally unique); the
    // first can race the registration install, so retry until delivery.
    let mut next_id = 1u64;
    loop {
        let id = next_id;
        next_id += 1;
        handles[0].invoke(move |node, ctx| {
            node.publish_event(
                ctx,
                0,
                Event {
                    id,
                    point: Point(vec![20.0, 20.0]),
                },
            )
        });
        let delivered = handles[1].query(|_node, ctx| ctx.world().metrics.deliveries().len());
        if delivered >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "event never delivered");
        std::thread::sleep(Duration::from_millis(100));
    }

    // Every delivered record belongs to the one subscription we made.
    let records = handles[1].query(|_node, ctx| ctx.world().metrics.deliveries().to_vec());
    assert!(records.iter().all(|r| r.subid == subid));

    for h in handles {
        h.shutdown();
    }
}
