//! Compile-and-run check for the README observability snippet: builder
//! construction, flight recording, and run-report export round-trip.

use hypersub_core::prelude::*;

#[test]
fn readme_observability_snippet_runs() -> Result<()> {
    let scheme = SchemeDef::builder("quotes")
        .attribute("price", 0.0, 100.0)
        .attribute("volume", 0.0, 100.0)
        .build(0);
    let mut net = Network::builder(64)
        .registry(Registry::new(vec![scheme]))
        .seed(7)
        .latency(SimTime::from_millis(10))
        .flight_recorder(1 << 14) // bounded ring; omit for zero overhead
        .build()?;

    net.subscribe(
        3,
        0,
        Subscription::new(Rect::new(vec![10.0, 0.0], vec![20.0, 100.0])),
    );
    net.run_to_quiescence();
    net.publish(40, 0, Point(vec![15.0, 42.0]))?;
    net.run_to_quiescence();

    // Inspect the trace…
    let rec = net.recorder().expect("recording enabled");
    assert!(rec.recorded() > 0);
    for (kind, count) in rec.kind_counts() {
        let _ = (kind, count); // e.g. ("net.deliver", 12)
    }

    // …and export the full run report (trace + metrics + stats) as JSON.
    let report = net.report();
    let json = report.to_json();
    assert_eq!(Report::from_json(&json).as_ref(), Ok(&report));
    assert!(report.trace.is_some());
    assert_eq!(report.digest, net.run_digest());
    Ok(())
}
