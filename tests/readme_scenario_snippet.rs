//! Compile-and-run check for the README adversity-scenario snippet:
//! running a scenario, reading verdicts, and the falsifiability flip.

use hypersub_core::prelude::*;

#[test]
fn readme_scenario_snippet_runs() -> Result<()> {
    use hypersub_scenario::{RunConfig, Scenario};

    // Named, seeded, deterministic: same seed, same digest, same verdicts.
    let outcome = Scenario::AsymmetricPartition.run(&RunConfig::quick(7))?;
    assert!(outcome.passed());
    for v in &outcome.verdicts {
        // e.g. [ok] delivery.no_permanent_loss — 248/248 pairs delivered
        println!(
            "[{}] {} — {}",
            if v.passed { "ok" } else { "FAIL" },
            v.invariant,
            v.details
        );
    }

    // The pack is falsifiable by construction: every scenario names the
    // defense it exercises, and disabling it must flip the scenario's
    // designated invariant to failed.
    let broken = Scenario::AsymmetricPartition.run(&RunConfig::quick(7).without_defense())?;
    assert!(!broken.verdict("delivery.no_permanent_loss").unwrap().passed);
    Ok(())
}
