//! Compile-and-run check for the README shoot-out quickstart snippet:
//! running all five systems on one rung, checking the equivalence
//! oracle, and rendering the comparison artifacts.

use hypersub_core::prelude::*;

#[test]
fn readme_shootout_snippet_runs() -> Result<()> {
    use hypersub_shootout::{all_systems, render_table, run_rung, shootout_json};

    // Five systems, one rung, one seed. Every system builds the same
    // Chord substrate and consumes the same workload stream.
    let outcome = run_rung(&all_systems(), (64, 3, 20), 7)?;
    assert!(outcome.ok(), "equivalence failures: {:?}", outcome.failures);
    println!("{}", render_table(&outcome));

    // The same data as a diff-able, digest-pinned JSON document.
    let doc = shootout_json(7, "quick", &[outcome]);
    assert!(doc.contains("\"equivalence_ok\": true"));
    Ok(())
}
