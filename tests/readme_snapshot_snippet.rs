//! Compile-and-run check for the README checkpoint/restore snippet:
//! opt-in snapshots, mid-run pause to bytes, restore in a "fresh
//! process" (a new `Network` with no shared state), and digest-identical
//! completion.

use hypersub_core::prelude::*;

#[test]
fn readme_snapshot_snippet_runs() -> Result<()> {
    let scheme = SchemeDef::builder("quotes")
        .attribute("price", 0.0, 100.0)
        .attribute("volume", 0.0, 100.0)
        .build(0);
    let build = || -> Result<Network> {
        Network::builder(32)
            .registry(Registry::new(vec![scheme.clone()]))
            .seed(7)
            .latency(SimTime::from_millis(10))
            .snapshots(SnapshotConfig::enabled()) // opt in; default off
            .build()
    };
    let scenario = |net: &mut Network| -> Result<()> {
        net.subscribe(
            3,
            0,
            Subscription::new(Rect::new(vec![10.0, 0.0], vec![20.0, 100.0])),
        );
        net.run_to_quiescence();
        let t = net.time();
        for i in 0..8u64 {
            net.schedule_publish(
                t + SimTime::from_secs(10 + i * 7),
                5,
                0,
                Point(vec![15.0, 42.0]),
            )?;
        }
        Ok(())
    };

    // The uninterrupted run, for reference.
    let mut reference = build()?;
    scenario(&mut reference)?;
    reference.run_to_quiescence();

    // The snippet's split run: pause mid-run, snapshot, drop, restore.
    let mut net = build()?;
    scenario(&mut net)?;
    net.run_until(SimTime::from_secs(30));
    let bytes = net.snapshot()?; // versioned, checksummed bytes
    drop(net); // process can exit here

    let mut resumed = Network::restore(&bytes)?;
    resumed.run_to_quiescence();

    assert_eq!(resumed.run_digest(), reference.run_digest());
    assert_eq!(resumed.deliveries(), reference.deliveries());

    // And the advertised opt-in rule: a default build refuses to snapshot.
    let default_net = Network::builder(8)
        .registry(Registry::new(vec![scheme]))
        .seed(7)
        .build()?;
    assert_eq!(
        default_net.snapshot().unwrap_err(),
        HyperSubError::SnapshotsDisabled
    );
    Ok(())
}
