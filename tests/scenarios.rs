//! Acceptance tests for the adversity scenario pack.
//!
//! Two contracts, proven for every scenario in the pack:
//!
//! 1. **The pack passes.** Under the fixed CI seed, every scenario's
//!    invariants hold with its defense enabled — the schedules are
//!    calibrated so the defenses actually close the loss windows they
//!    claim to close.
//! 2. **The harness is falsifiable.** Re-running the *same* schedule
//!    with the defense disabled must flip the scenario's designated
//!    invariant to failed. A harness whose checks cannot fail proves
//!    nothing; this pins that each verdict really measures its defense.
//!
//! Plus the churn soak's segmentation contract: driving the segments
//! one at a time through checkpoint bytes — as CI does across separate
//! invocations — must reproduce the uninterrupted run bit-for-bit.

use hypersub_scenario::{soak_segment, soak_segment_count, RunConfig, Scenario, SoakStep};

/// The seed CI pins (`run_experiments.sh`, the scenario-smoke job).
const SEED: u64 = 7;

#[test]
fn pack_passes_with_defenses_enabled() {
    for s in Scenario::ALL {
        let out = s.run(&RunConfig::quick(SEED)).expect("scenario run");
        assert!(
            out.passed(),
            "{} failed with defense on:\n{}",
            s.name(),
            out.to_json()
        );
        assert!(out.published > 0, "{} published nothing", s.name());
        assert!(out.expected > 0, "{} had no matching pairs", s.name());
    }
}

#[test]
fn disabling_the_defense_flips_the_designated_invariant() {
    for s in Scenario::ALL {
        let out = s
            .run(&RunConfig::quick(SEED).without_defense())
            .expect("scenario run");
        let name = s.designated_invariant();
        let verdict = out
            .verdict(name)
            .unwrap_or_else(|| panic!("{} never evaluated {name}", s.name()));
        assert!(
            !verdict.passed,
            "{}: {name} still passed without its defense ({}) — the invariant \
             does not measure what it claims",
            s.name(),
            verdict.details
        );
        assert!(!out.passed(), "{} passed overall without defense", s.name());
    }
}

#[test]
fn soak_segments_resume_to_the_uninterrupted_outcome() {
    let cfg = RunConfig::quick(SEED);
    let whole = Scenario::ChurnSoak.run(&cfg).expect("uninterrupted run");

    // Drive the segments the way CI does: each invocation sees only the
    // previous segment's checkpoint bytes.
    let mut checkpoint: Option<Vec<u8>> = None;
    let mut stepped = None;
    for segment in 0..soak_segment_count(cfg.tier) {
        match soak_segment(&cfg, segment, checkpoint.as_deref()).expect("segment") {
            SoakStep::Checkpoint(bytes) => {
                assert!(!bytes.is_empty(), "segment {segment} produced empty bytes");
                checkpoint = Some(bytes);
            }
            SoakStep::Done(outcome) => stepped = Some(*outcome),
        }
    }
    let stepped = stepped.expect("final segment evaluates");
    assert_eq!(stepped.digest, whole.digest, "segmented digest diverged");
    assert_eq!(stepped.verdicts, whole.verdicts);
    assert_eq!(
        (stepped.delivered, stepped.expected, stepped.steps),
        (whole.delivered, whole.expected, whole.steps)
    );
}
