//! Acceptance tests for the self-healing subscription plane: successor
//! replication + soft-state leases bound the delivery-loss window around
//! a node failure, and a revived node re-joins the ring cleanly.

use hypersub_core::advanced::SimAccess;
use hypersub_core::prelude::*;
use hypersub_tests::test_network;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const NODES: usize = 32;
const VICTIM: usize = 20;

/// Publishes continuously across a node failure and returns
/// `(lost_pairs, tail_lost_pairs)`: total `(event, subscriber)` pairs
/// lost over the whole stream, and pairs lost among the final quarter of
/// events (long after any repair should have converged).
fn loss_window_run(heal: bool) -> (usize, usize) {
    let config = if heal {
        SystemConfig::default().with_self_healing()
    } else {
        SystemConfig::default()
    };
    let mut net = test_network(NODES, 4242, config);
    net.enable_maintenance();
    let mut rng = SmallRng::seed_from_u64(9);
    // Subscribers 0..8 hold wide staggered bands, so the victim owns a
    // slice of nearly every subscription's rendezvous chain.
    for node in 0..8 {
        let lo = (node * 9) as f64;
        net.subscribe(
            node,
            0,
            Subscription::new(Rect::new(vec![lo, 0.0], vec![lo + 28.0, 100.0])),
        );
    }
    net.run_until(net.time() + SimTime::from_secs(10));

    // Fail the two non-subscriber nodes holding the most rendezvous
    // entries — guaranteeing subscription state actually dies with them.
    // (Repository contents are identical in both runs: replication copies
    // state beside the repos, never into them.)
    let mut by_load: Vec<(usize, usize)> = (8..NODES)
        .map(|i| {
            let n = net.sim().node(i);
            (n.repos.values().map(|r| r.entries.len()).sum::<usize>(), i)
        })
        .collect();
    by_load.sort_unstable_by(|a, b| b.cmp(a));
    assert!(by_load[1].0 > 0, "scenario must place state on the victims");
    for &(_, v) in &by_load[..2] {
        net.fail(v).unwrap();
    }

    // 100 publishes over 50 s: the stream spans failure detection,
    // stabilization, promotion, and several lease periods.
    let mut t = net.time();
    let mut ids = Vec::new();
    for _ in 0..100 {
        let node = rng.gen_range(0..8usize); // subscribers publish; all live
        let p = Point(vec![rng.gen_range(0.0..=100.0), rng.gen_range(0.0..=100.0)]);
        ids.push(net.schedule_publish(t, node, 0, p).unwrap());
        t += SimTime::from_millis(500);
    }
    net.run_until(t + SimTime::from_secs(30));

    let stats = net.event_stats();
    let lost_for = |ids: &[u64]| {
        ids.iter()
            .map(|id| {
                let s = stats.iter().find(|s| s.event == *id).unwrap();
                assert_eq!(s.duplicates, 0, "repair must never duplicate deliveries");
                s.expected - s.delivered
            })
            .sum::<usize>()
    };
    (lost_for(&ids), lost_for(&ids[75..]))
}

#[test]
fn replication_and_leases_bound_the_loss_window() {
    let (lost_off, tail_off) = loss_window_run(false);
    let (lost_heal, tail_heal) = loss_window_run(true);
    // Without self-healing (and no global refresh), state the victim
    // owned stays gone: loss persists to the end of the stream.
    assert!(
        lost_off > 0,
        "the crutch-free baseline must lose deliveries ({lost_off} lost)"
    );
    assert!(
        tail_off > 0,
        "without repair, loss must persist into the tail ({tail_off} lost)"
    );
    // With replication + leases, the loss window closes: strictly fewer
    // pairs lost overall, and the tail (long after promotion) is clean.
    assert!(
        lost_heal < lost_off,
        "self-healing must recover deliveries the baseline loses \
         ({lost_heal} vs {lost_off})"
    );
    assert_eq!(
        tail_heal, 0,
        "after promotion + lease convergence, no pair may be lost"
    );
}

#[test]
fn revived_node_rejoins_and_resumes_ownership() {
    let mut net = test_network(NODES, 4711, SystemConfig::default().with_self_healing());
    net.enable_maintenance();
    for node in 0..8 {
        net.subscribe(
            node,
            0,
            Subscription::new(Rect::new(vec![0.0, 0.0], vec![100.0, 100.0])),
        );
    }
    net.run_until(net.time() + SimTime::from_secs(10));

    net.fail(VICTIM).unwrap();
    net.run_until(net.time() + SimTime::from_secs(40));

    // While the victim is down, its successor serves the promoted state.
    let mut rng = SmallRng::seed_from_u64(3);
    let before = net.event_stats().len();
    for _ in 0..10 {
        let p = Point(vec![rng.gen_range(0.0..=100.0), rng.gen_range(0.0..=100.0)]);
        net.publish(rng.gen_range(0..8), 0, p).unwrap();
    }
    net.run_until(net.time() + SimTime::from_secs(30));
    for s in &net.event_stats()[before..] {
        assert_eq!(s.delivered, 8, "successor must serve the promoted state");
        assert_eq!(s.duplicates, 0);
    }

    // Revive: the node re-joins with its stale soft state dropped, the
    // ring reintegrates it, and the leases repopulate its repositories.
    net.revive(VICTIM).unwrap();
    net.run_until(net.time() + SimTime::from_secs(40));
    assert!(
        !net.sim().node(VICTIM).repos.is_empty(),
        "the revived node must resume owning rendezvous state"
    );

    let before = net.event_stats().len();
    for _ in 0..10 {
        let p = Point(vec![rng.gen_range(0.0..=100.0), rng.gen_range(0.0..=100.0)]);
        net.publish(rng.gen_range(0..8), 0, p).unwrap();
    }
    net.run_until(net.time() + SimTime::from_secs(30));
    for s in &net.event_stats()[before..] {
        assert_eq!(
            s.delivered, 8,
            "delivery through the re-joined node must be complete"
        );
        assert_eq!(
            s.duplicates, 0,
            "stale pre-failure state must not resurface"
        );
    }
}

/// Lease-tick scrubbing: rolling churn moves zone ownership around the
/// ring over and over, and every move used to strand repositories on
/// their previous owner — which `rebuild_chains` kept re-pushing and
/// replication kept copying onward, so total state *compounded* with
/// every ownership change (the churn-soak scenario found this: segment
/// snapshots grew 16 MB -> 887 MB in five segments). With scrubbing, a
/// calm network holds only repositories their holders actually own, and
/// total state stays near the steady-state baseline.
#[test]
fn lease_ticks_scrub_repositories_the_ring_took_away() {
    let total_repos = |net: &Network| -> (usize, usize) {
        let repos = net.nodes().iter().map(|n| n.repos.len()).sum();
        let entries = net
            .nodes()
            .iter()
            .map(|n| n.repos.values().map(|r| r.entries.len()).sum::<usize>())
            .sum();
        (repos, entries)
    };

    let mut net = test_network(NODES, 2026, SystemConfig::default().with_self_healing());
    net.enable_maintenance();
    for node in 0..8 {
        let lo = (node * 9) as f64;
        net.subscribe(
            node,
            0,
            Subscription::new(Rect::new(vec![lo, 0.0], vec![lo + 28.0, 100.0])),
        );
    }
    net.run_until(net.time() + SimTime::from_secs(10));
    let (base_repos, base_entries) = total_repos(&net);
    assert!(base_repos > 0, "steady state must hold rendezvous state");

    // Rolling churn: one non-subscriber at a time leaves and rejoins, so
    // zone ownership keeps sloshing between ring neighbors.
    let mut rng = SmallRng::seed_from_u64(77);
    for _ in 0..10 {
        let v = rng.gen_range(8..NODES);
        net.fail(v).unwrap();
        net.run_until(net.time() + SimTime::from_secs(6));
        net.revive(v).unwrap();
        net.run_until(net.time() + SimTime::from_secs(6));
    }
    // Calm: several lease periods for ownership, chains, and scrubbing
    // to settle.
    net.run_until(net.time() + SimTime::from_secs(60));

    // Every surviving repository is owned by its holder.
    for (i, n) in net.nodes().iter().enumerate() {
        for &(scheme, ss, zone) in n.repos.keys() {
            let rotation = n.registry.scheme(scheme).subschemes[ss as usize].rotation;
            let key = hypersub_lph::rotation::rotate_key(zone.key(&n.cfg.zone), rotation);
            assert!(
                n.chord().responsible_for(key),
                "node {i} still holds a repository for zone {zone:?} (key {key:#x}) \
                 it is not responsible for"
            );
        }
    }
    // And total state did not compound with the ownership changes.
    let (repos, entries) = total_repos(&net);
    assert!(
        repos <= base_repos * 3 && entries <= base_entries * 3,
        "state grew {base_repos}/{base_entries} -> {repos}/{entries} repos/entries \
         across 10 churn rounds — ownership changes must not accumulate state"
    );
}
