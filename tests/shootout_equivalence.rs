//! Differential oracle for the shoot-out: on arbitrary seeded workloads,
//! all five systems (HyperSub + four baselines) must deliver the
//! identical event → subscriber relation — the delivery semantics of a
//! content-based pub/sub system are not a design choice, only its cost
//! profile is. Plus fixed-seed golden digests per baseline system, so a
//! behavioral change in any rival (which would silently re-tune the
//! comparison HyperSub is graded against) fails loudly.

use hypersub_shootout::{all_systems, run_rung, ShootoutParams, System};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// All five systems agree with the brute-force oracle and with each
    /// other on random rungs and seeds.
    #[test]
    fn five_systems_deliver_identically(
        nodes in 24usize..48,
        subs_per_node in 2usize..4,
        events in 6usize..16,
        seed in 0u64..1_000,
    ) {
        let outcome = run_rung(&all_systems(), (nodes, subs_per_node, events), seed)
            .expect("rung parameters are valid");
        prop_assert!(outcome.ok(), "equivalence failures: {:?}", outcome.failures);
        let first = &outcome.runs[0];
        for r in &outcome.runs[1..] {
            prop_assert_eq!(r.delivered_canonical(), first.delivered_canonical());
            prop_assert_eq!(r.expected_canonical(), first.expected_canonical());
        }
    }
}

/// The golden rung: small enough for debug-mode CI, large enough that
/// routing, arc replication, subgroup fan-out and the broadcast tree all
/// engage.
const GOLDEN_RUNG: (usize, usize, usize) = (48, 3, 30);
const GOLDEN_SEED: u64 = 42;

fn golden_digest(system: &dyn System) -> u64 {
    let p = ShootoutParams::new(GOLDEN_RUNG, GOLDEN_SEED);
    let run = system.run(&p).expect("golden rung runs");
    assert!(
        run.equivalent(),
        "{} must pass the oracle on the golden rung",
        run.system
    );
    run.report.digest
}

/// Fixed-seed digests for every baseline system. A mismatch means the
/// baseline's observable behavior changed — retune deliberately and
/// repin, or fix the regression.
#[test]
fn baseline_golden_digests() {
    let expected: &[(&str, u64)] = &[
        ("rendezvous", 0x77980f7fe46a1429),
        ("attr_ring", 0xc56ae9451930da5d),
        ("subgroup", 0xdde2be331363bceb),
        ("gossip", 0xd997374b7b6a79ef),
    ];
    for (name, want) in expected {
        let sys = hypersub_shootout::system_by_name(name).expect("known system");
        let got = golden_digest(sys.as_ref());
        assert_eq!(
            got, *want,
            "{name}: golden digest {got:#018x}, pinned {want:#018x}"
        );
    }
}
