//! Byte-stability golden test for the versioned snapshot encoding.
//!
//! A fixed scenario's snapshot must stay **byte-identical** to the
//! committed `tests/golden/snapshot_v1.bin`: the format is versioned
//! (envelope magic `HSNP`, version 1) and restore must keep working on
//! old bytes, so any encoding change — field order, widths, map
//! ordering, envelope framing — is a format break that requires a
//! version bump, not a silent re-capture.
//!
//! If the encoding changes *on purpose* (with a version bump and
//! migration story per DESIGN.md), re-capture with
//! `UPDATE_SNAPSHOT_GOLDEN=1 cargo test -p hypersub-tests --test
//! snapshot_golden` and justify the bump in the same commit.

use hypersub_core::prelude::*;
use hypersub_workload::{WorkloadGen, WorkloadSpec};
use std::path::PathBuf;

/// Digest the pinned scenario reaches when run to completion; restoring
/// the golden bytes must still get there.
const GOLDEN_TAIL_DIGEST: u64 = 0xf4b4_983d_0cea_388b;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join("snapshot_v1.bin")
}

/// The pinned scenario: every input fixed, snapshot taken at t = 6 s.
fn pinned_snapshot() -> Vec<u8> {
    let scheme = SchemeDef::builder("golden")
        .attribute("x", 0.0, 100.0)
        .attribute("y", 0.0, 100.0)
        .build(0);
    let mut net = Network::builder(16)
        .registry(Registry::new(vec![scheme]))
        .config(SystemConfig::default().with_retries())
        .latency(SimTime::from_millis(10))
        .seed(0x90_1d_e4)
        .snapshots(SnapshotConfig::enabled())
        .build()
        .expect("valid golden network");
    let mut gen = WorkloadGen::new(WorkloadSpec::paper_table1(), 0x90_1d_e4 ^ 0x60_1d);
    for i in 0..32 {
        let r4 = gen.subscription().rect;
        let rect = Rect::new(
            vec![r4.lo[0] / 100.0, r4.lo[1] / 100.0],
            vec![r4.hi[0] / 100.0, r4.hi[1] / 100.0],
        );
        net.subscribe(i % 16, 0, Subscription::new(rect));
    }
    net.run_to_quiescence();
    let mut t = net.time() + SimTime::from_secs(1);
    for i in 0..12 {
        let p4 = gen.event_point();
        let p = Point(vec![p4.0[0] / 100.0, p4.0[1] / 100.0]);
        net.schedule_publish(t, (i * 13) % 16, 0, p)
            .expect("publisher index in range");
        t += SimTime::from_millis(750);
    }
    net.run_until(SimTime::from_secs(6));
    net.snapshot().expect("snapshot-enabled network")
}

#[test]
fn snapshot_v1_bytes_are_stable() {
    let bytes = pinned_snapshot();
    let path = golden_path();
    if std::env::var_os("UPDATE_SNAPSHOT_GOLDEN").is_some() {
        std::fs::write(&path, &bytes).expect("write golden snapshot");
        panic!(
            "golden snapshot re-captured to {} ({} bytes) — commit it and drop \
             UPDATE_SNAPSHOT_GOLDEN",
            path.display(),
            bytes.len()
        );
    }
    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); capture with UPDATE_SNAPSHOT_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        bytes.len(),
        golden.len(),
        "snapshot length changed — encoding drift needs a version bump"
    );
    let first_diff = bytes.iter().zip(&golden).position(|(a, b)| a != b);
    assert_eq!(
        first_diff, None,
        "snapshot bytes diverge from golden at offset {first_diff:?} — \
         encoding drift needs a version bump"
    );
}

#[test]
fn golden_snapshot_still_restores() {
    let golden = std::fs::read(golden_path()).expect("golden snapshot present");
    let mut net = Network::restore(&golden).expect("version-1 bytes restore");
    net.run_to_quiescence();
    let d = net.run_digest();
    println!("tail digest: {d:#018x}");
    assert_eq!(d, GOLDEN_TAIL_DIGEST, "observed {d:#018x}");
}
