//! End-to-end string attributes (§3.1): prefix/suffix predicates
//! converted to numeric ranges, flowing through the full
//! subscribe → publish → deliver pipeline.

use hypersub_core::prelude::*;
use hypersub_core::strings;

/// A "web events" scheme: hostname (forward + reversed encodings for
/// prefix and suffix predicates) plus a numeric status code.
fn scheme() -> SchemeDef {
    SchemeDef::builder("weblog")
        .attribute("host", 0.0, strings::DOMAIN_MAX)
        .attribute("host_rev", 0.0, strings::DOMAIN_MAX)
        .attribute("status", 100.0, 599.0)
        .build(0)
}

fn event_point(host: &str, status: f64) -> Point {
    Point(vec![
        strings::encode(host),
        strings::encode_reversed(host),
        status,
    ])
}

#[test]
fn prefix_and_suffix_subscriptions_deliver_exactly() {
    let s = scheme();
    let mut net = Network::builder(24)
        .registry(Registry::new(vec![s.clone()]))
        .config(SystemConfig::default())
        .seed(91)
        .build()
        .expect("valid test network");

    // Node 1: everything from hosts starting with "api".
    let (lo, hi) = strings::prefix("api");
    net.subscribe(
        1,
        0,
        Subscription::from_predicates(&s.space, &[(0, lo, hi)]),
    );
    // Node 2: server errors from hosts ending in ".io".
    let (lo, hi) = strings::suffix(".io");
    net.subscribe(
        2,
        0,
        Subscription::from_predicates(&s.space, &[(1, lo, hi), (2, 500.0, 599.0)]),
    );
    // Node 3: one exact host.
    let (lo, hi) = strings::exact("db9");
    net.subscribe(
        3,
        0,
        Subscription::from_predicates(&s.space, &[(0, lo, hi)]),
    );
    net.run_to_quiescence();

    // (host, status, expected matches)
    let cases: &[(&str, f64, usize)] = &[
        ("api-7", 200.0, 1),  // prefix only
        ("api.io", 503.0, 2), // prefix + suffix-with-5xx
        ("db9", 200.0, 1),    // exact only
        ("web.io", 200.0, 0), // suffix matches host but status is 2xx
        ("web.io", 500.0, 1), // suffix + 5xx
        ("other", 404.0, 0),
    ];
    for &(host, status, want) in cases {
        let p = event_point(host, status);
        assert_eq!(
            net.expected_matches(0, &p).len(),
            want,
            "oracle disagrees for {host}/{status}"
        );
        let ev = net.publish(5, 0, p).unwrap();
        net.run_to_quiescence();
        let stats = net.event_stats();
        let st = stats.iter().find(|e| e.event == ev).unwrap();
        assert_eq!(st.delivered, want, "{host} status {status}");
        assert_eq!(st.duplicates, 0);
    }
}
