//! Golden wire-bytes pins for the live transport framing of [`HyperMsg`].
//!
//! `hypersub-net` frames exactly these bytes onto TCP connections, so the
//! encoding is a cross-process, cross-release compatibility surface: if
//! any of these vectors change, old and new nodes can no longer talk and
//! `HyperMsg::WIRE_VERSION` MUST be bumped. Regenerate the vectors only
//! together with a version bump (see the `WireMsg` versioning rules in
//! DESIGN.md "Transport & runtime").

use hypersub_chord::Peer;
use hypersub_core::model::{Event, SubId, SubTarget};
use hypersub_core::msg::{DeliveryMsg, HyperMsg, Routed};
use hypersub_lph::{Point, Rect, ZoneCode};
use hypersub_simnet::WireMsg;
use std::sync::Arc;

fn hex(b: &[u8]) -> String {
    b.iter().map(|x| format!("{x:02x}")).collect()
}

fn representative_messages() -> Vec<HyperMsg> {
    vec![
        HyperMsg::Route {
            key: 0x0123_4567_89ab_cdef,
            inner: Routed::Register {
                scheme: 2,
                ss: 1,
                zone: ZoneCode::ROOT,
                subid: SubId { nid: 7, iid: 3 },
                full: Rect::new(vec![0.0, 10.0], vec![25.0, 50.0]),
                proj: Rect::new(vec![0.0], vec![25.0]),
            },
        },
        HyperMsg::Delivery(DeliveryMsg {
            scheme: 0,
            ss: 0,
            event: Arc::new(Event {
                id: 99,
                point: Point(vec![1.5, -2.5]),
            }),
            hops: 4,
            sender: Some(Peer { id: 11, idx: 2 }),
            targets: vec![
                SubTarget::rendezvous(1),
                SubTarget::sub(SubId { nid: 5, iid: 8 }),
            ],
        }),
        HyperMsg::Reliable {
            token: 0xdead_beef,
            inner: Box::new(HyperMsg::Ack { token: 42 }),
        },
        HyperMsg::LoadProbe {
            origin: Peer { id: 3, idx: 1 },
            ttl: 2,
        },
    ]
}

/// The pinned wire form (version byte + body) of each representative
/// message, one per `HyperMsg` family the transport actually carries:
/// greedy routing, delivery fan-out, the reliable/ack envelope, and a
/// periodic probe.
const GOLDEN: [&str; 4] = [
    // Route { key, Register { scheme, ss, zone, subid, full, proj } }
    "0100efcdab89674523010002000000010000000000000000000700000000000000030000000200000000000000000000000000000000000000000024400200000000000000000000000000394000000000000049400100000000000000000000000000000001000000000000000000000000003940",
    // Delivery { scheme, ss, event, hops, sender, targets }
    "0101000000000063000000000000000200000000000000000000000000f83f00000000000004c004000000010b000000000000000200000000000000020000000000000001000000000000000005000000000000000108000000",
    // Reliable { token, inner: Ack }
    "0108efbeadde00000000092a00000000000000",
    // LoadProbe { origin, ttl }
    "01020300000000000000010000000000000002",
];

#[test]
fn hypermsg_wire_bytes_are_pinned() {
    let msgs = representative_messages();
    assert_eq!(msgs.len(), GOLDEN.len());
    for (msg, want) in msgs.iter().zip(GOLDEN) {
        assert_eq!(
            hex(&msg.to_wire_bytes()),
            want,
            "wire bytes drifted — bump HyperMsg::WIRE_VERSION and regenerate"
        );
    }
}

#[test]
fn wire_version_byte_leads_every_encoding() {
    for msg in representative_messages() {
        assert_eq!(msg.to_wire_bytes()[0], HyperMsg::WIRE_VERSION);
    }
}

#[test]
fn wire_round_trip_is_byte_identical() {
    for msg in representative_messages() {
        let bytes = msg.to_wire_bytes();
        let back = HyperMsg::from_wire_bytes(&bytes).expect("decodes");
        assert_eq!(back.to_wire_bytes(), bytes);
    }
}

#[test]
fn foreign_version_is_rejected() {
    let mut bytes = representative_messages()[0].to_wire_bytes();
    bytes[0] = HyperMsg::WIRE_VERSION + 1;
    assert!(HyperMsg::from_wire_bytes(&bytes).is_err());
}

#[test]
fn trailing_bytes_are_rejected() {
    let mut bytes = representative_messages()[0].to_wire_bytes();
    bytes.push(0);
    assert!(HyperMsg::from_wire_bytes(&bytes).is_err());
}

#[test]
fn truncated_frame_is_rejected() {
    let bytes = representative_messages()[1].to_wire_bytes();
    assert!(HyperMsg::from_wire_bytes(&bytes[..bytes.len() - 1]).is_err());
}
