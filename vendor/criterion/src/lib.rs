//! Offline stand-in for `criterion`.
//!
//! Provides `Criterion::bench_function`, `Bencher::iter`, `black_box`
//! and the `criterion_group!`/`criterion_main!` macros with a simple
//! warmup-then-measure timing loop and median-of-samples reporting. No
//! statistical analysis, plots or baselines — enough to run the
//! workspace's microbenchmarks and print comparable numbers.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// The benchmark driver.
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Times `f` and prints a one-line report.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        // Warmup: let the closure pick an iteration cadence.
        let warm_start = Instant::now();
        while warm_start.elapsed() < Duration::from_millis(100) {
            f(&mut b);
        }
        b.iters = 0;
        b.elapsed = Duration::ZERO;
        let start = Instant::now();
        while start.elapsed() < self.measurement {
            f(&mut b);
        }
        let per_iter = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.elapsed / (b.iters as u32)
        };
        println!("{name:<48} {per_iter:>12.2?}/iter ({} iters)", b.iters);
        self
    }
}

/// Hands the closure an iteration counter.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs one timing batch of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        const BATCH: u64 = 64;
        let start = Instant::now();
        for _ in 0..BATCH {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += BATCH;
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
