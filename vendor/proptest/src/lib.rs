//! Offline stand-in for `proptest`.
//!
//! Implements deterministic random property testing with the API subset
//! this workspace uses: the [`strategy::Strategy`] trait with
//! `prop_map`, range and tuple strategies, string char-class patterns
//! (`"[a-z]{0,10}"`), `prop::collection::vec`, `any::<T>()`,
//! [`test_runner::ProptestConfig`], and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from the real crate: no shrinking (a failing case
//! reports its inputs and the case number instead of a minimized
//! example), and the RNG is seeded deterministically per test so runs
//! are reproducible by construction.

pub mod rng;
pub mod strategy;
pub mod test_runner;

/// Strategy constructors grouped like the real crate's `prop` module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

/// Produces the canonical strategy for a type (`any::<bool>()` etc.).
pub fn any<T: strategy::Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// The glob import every property test starts with.
pub mod prelude {
    pub use crate::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Expands `#[test]` functions whose arguments are drawn from
/// strategies. Each function becomes a standard test running
/// `config.cases` deterministic random cases; a panic reports the case
/// number and the generated inputs.
#[macro_export]
macro_rules! proptest {
    // Entry: optional config header.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal: expands the function list. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let seed = $crate::rng::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = $crate::rng::TestRng::new(seed ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $(let $arg = $arg.clone();)+
                    $body
                }));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest case {}/{} of {} failed with inputs:",
                        case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)+
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Asserts a condition inside a property (panics with the message).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples(
            x in 0.0f64..100.0,
            n in 1usize..10,
            pair in (0u64..5, 1u8..=3),
            flag in any::<bool>(),
        ) {
            prop_assert!((0.0..100.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!(pair.0 < 5 && (1..=3).contains(&pair.1));
            let _ = flag;
        }

        #[test]
        fn vec_and_map(
            items in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..8),
            label in "[a-z]{1,5}",
        ) {
            prop_assert!(!items.is_empty() && items.len() < 8);
            prop_assert!(!label.is_empty() && label.len() <= 5);
            prop_assert!(label.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn prop_map_transforms() {
        let s = (0u64..10).prop_map(|v| v * 2);
        let mut rng = crate::rng::TestRng::new(1);
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn deterministic_generation() {
        let s = prop::collection::vec(0u64..1000, 0..10);
        let a: Vec<Vec<u64>> = (0..20)
            .map(|i| Strategy::generate(&s, &mut crate::rng::TestRng::new(i)))
            .collect();
        let b: Vec<Vec<u64>> = (0..20)
            .map(|i| Strategy::generate(&s, &mut crate::rng::TestRng::new(i)))
            .collect();
        assert_eq!(a, b);
    }
}
