//! Value-generation strategies.

use crate::rng::TestRng;
use std::ops::{Range, RangeInclusive};

/// Generates values of an associated type from a [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// A `Vec` of values from `elem`, with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: Range<usize>,
}

/// Builds a [`VecStrategy`] (`prop::collection::vec`).
pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.clone().generate(rng);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

/// String strategy from a regex-like char-class pattern. Supports the
/// subset `"[a-z]{m,n}"` / `"[a-z]{n}"` / literal characters, which is
/// what the workspace's tests use; anything else panics loudly.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let reps = if atom.min == atom.max {
                atom.min
            } else {
                atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize
            };
            for _ in 0..reps {
                let c = atom.chars[rng.below(atom.chars.len() as u64) as usize];
                out.push(c);
            }
        }
        out
    }
}

struct PatternAtom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let mut atoms = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        let chars: Vec<char> = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match it.next() {
                        Some(']') => break,
                        Some('-') => {
                            let lo = prev.take().unwrap_or_else(|| {
                                panic!("unsupported pattern {pattern:?}: dangling '-'")
                            });
                            let hi = it.next().unwrap_or_else(|| {
                                panic!("unsupported pattern {pattern:?}: unterminated range")
                            });
                            set.pop();
                            for x in lo..=hi {
                                set.push(x);
                            }
                        }
                        Some(ch) => {
                            prev = Some(ch);
                            set.push(ch);
                        }
                        None => panic!("unsupported pattern {pattern:?}: unclosed class"),
                    }
                }
                set
            }
            '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '.' | '\\' => {
                panic!("unsupported pattern {pattern:?}: this shim handles char classes and literals only")
            }
            lit => vec![lit],
        };
        // Optional {n} / {m,n} repetition.
        let (min, max) = if it.peek() == Some(&'{') {
            it.next();
            let spec: String = it.by_ref().take_while(|&ch| ch != '}').collect();
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad repetition lower bound"),
                    n.trim().parse().expect("bad repetition upper bound"),
                ),
                None => {
                    let n: usize = spec.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad repetition in pattern {pattern:?}");
        atoms.push(PatternAtom { chars, min, max });
    }
    atoms
}

/// Types with a canonical strategy, for `any::<T>()`.
pub trait Arbitrary: Sized {
    /// The canonical strategy's type.
    type Strategy: Strategy<Value = Self>;
    /// Builds it.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy behind `any::<bool>()`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// Strategy behind `any::<int>()`: the type's full range.
#[derive(Debug, Clone, Copy)]
pub struct AnyInt<T>(std::marker::PhantomData<T>);

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyInt<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyInt<$t>;
            fn arbitrary() -> AnyInt<$t> {
                AnyInt(std::marker::PhantomData)
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
