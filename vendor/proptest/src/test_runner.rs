//! Runner configuration.

/// How `proptest!` runs a property. Only `cases` is consulted; the
/// other fields exist so configuration written against the real crate
/// (`ProptestConfig { cases: 12, ..ProptestConfig::default() }`) keeps
/// compiling.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; generation never fails.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 1024,
        }
    }
}

impl ProptestConfig {
    /// Config with a case count (parity with the real crate).
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}
