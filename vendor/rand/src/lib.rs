//! Offline stand-in for `rand` 0.8.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the minimal API surface it actually uses: [`Rng`] with
//! `gen`/`gen_range`/`gen_bool`, [`SeedableRng::seed_from_u64`], and
//! [`rngs::SmallRng`] backed by xoshiro256++ (the same family upstream
//! `SmallRng` uses on 64-bit targets). Everything is deterministic from
//! the seed; there is no OS entropy path.

pub mod rngs;

/// Core RNG capability: a stream of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "natural" domain by
/// [`Rng::gen`]: `[0, 1)` for floats, the full range for integers, a
/// fair coin for `bool`.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full integer range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty gen_range");
        let u = f32::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A value from `T`'s standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A value uniform over `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen_range(0.0..100.0);
            assert!((0.0..100.0).contains(&x));
            let y: usize = r.gen_range(3..10);
            assert!((3..10).contains(&y));
            let z: u8 = r.gen_range(1..=2);
            assert!(z == 1 || z == 2);
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn works_through_unsized_ref() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..10)
        }
        let mut r = SmallRng::seed_from_u64(3);
        assert!(draw(&mut r) < 10);
    }
}
