//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, deterministic generator: xoshiro256++, seeded through
/// splitmix64 — the same construction upstream `rand`'s 64-bit
/// `SmallRng` uses. Not cryptographically secure (neither is the
/// original).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }
}

impl SmallRng {
    /// The raw xoshiro256++ state, for checkpointing. Restoring via
    /// [`SmallRng::from_state`] continues the exact output stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a previously captured [`state`].
    ///
    /// [`state`]: SmallRng::state
    pub fn from_state(s: [u64; 4]) -> Self {
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Alias kept for drop-in compatibility with code written against the
/// full crate.
pub type StdRng = SmallRng;
