//! Offline stand-in for `rand_distr` 0.4: just [`Distribution`] and the
//! exponential distribution [`Exp`], which is all this workspace uses
//! (Poisson-process event arrivals in the workload generator).

use rand::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error from [`Exp::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpError {
    /// `lambda` was zero, negative or non-finite.
    LambdaTooSmall,
}

impl std::fmt::Display for ExpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lambda must be positive and finite")
    }
}

impl std::error::Error for ExpError {}

/// The exponential distribution `Exp(lambda)`, mean `1/lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp<T> {
    lambda: T,
}

impl Exp<f64> {
    /// Creates the distribution; `lambda` must be positive and finite.
    pub fn new(lambda: f64) -> Result<Self, ExpError> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Exp { lambda })
        } else {
            Err(ExpError::LambdaTooSmall)
        }
    }
}

impl Distribution<f64> for Exp<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse-CDF: -ln(1 - U) / lambda, with U in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        -(-u).ln_1p() / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_lambda() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(-1.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
        assert!(Exp::new(2.0).is_ok());
    }

    #[test]
    fn mean_approximates_inverse_lambda() {
        let d = Exp::new(0.5).unwrap(); // mean 2.0
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = total / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean} far from 2.0");
    }
}
