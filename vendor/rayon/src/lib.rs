//! Offline stand-in for `rayon`.
//!
//! The experiment harness only uses `par_iter().map(f).collect()` over
//! small config lists, so this shim provides exactly that: a
//! [`prelude::IntoParallelRefIterator`] whose `map(..).collect()`
//! evaluates with `std::thread::scope`, preserving input order.
//!
//! Concurrency is bounded to the machine's parallelism (overridable via
//! `RAYON_NUM_THREADS`): items run in chunks of at most that many
//! threads. Thread-per-item ran *every* experiment config at once, and a
//! dozen concurrent thousand-node simulations exhaust memory on small
//! machines — exactly how the fig5 sweep used to die at its largest
//! network sizes.

pub mod prelude {
    /// `.par_iter()` on slices and `Vec`s.
    pub trait IntoParallelRefIterator<'data> {
        /// Borrowed item type.
        type Item: Send + Sync + 'data;
        /// Begins a parallel pipeline over `&self`.
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: Send + Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    impl<'data, T: Send + Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    /// A borrowed parallel iterator.
    pub struct ParIter<'data, T> {
        items: &'data [T],
    }

    impl<'data, T: Sync> ParIter<'data, T> {
        /// Maps each item (evaluated on collect).
        pub fn map<F, O>(self, f: F) -> ParMap<'data, T, F>
        where
            F: Fn(&'data T) -> O + Sync,
            O: Send,
        {
            ParMap {
                items: self.items,
                f,
            }
        }
    }

    /// The mapped pipeline.
    pub struct ParMap<'data, T, F> {
        items: &'data [T],
        f: F,
    }

    impl<'data, T: Sync, F> ParMap<'data, T, F> {
        /// Runs the map on scoped threads — at most
        /// [`max_concurrency`](super::max_concurrency) at a time — and
        /// collects in input order.
        pub fn collect<C, O>(self) -> C
        where
            F: Fn(&'data T) -> O + Sync,
            O: Send,
            C: FromIterator<O>,
        {
            let f = &self.f;
            let cap = super::max_concurrency().max(1);
            let mut results: Vec<Option<O>> = Vec::with_capacity(self.items.len());
            for chunk in self.items.chunks(cap) {
                let chunk_results: Vec<Option<O>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = chunk
                        .iter()
                        .map(|item| scope.spawn(move || f(item)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| Some(h.join().expect("parallel task panicked")))
                        .collect()
                });
                results.extend(chunk_results);
            }
            results.iter_mut().map(|o| o.take().unwrap()).collect()
        }
    }
}

/// Maximum worker threads per batch: `RAYON_NUM_THREADS` if set (like
/// real rayon), otherwise the machine's available parallelism.
pub(crate) fn max_concurrency() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn maps_in_order() {
        let v = vec![1u64, 2, 3, 4];
        let out: Vec<u64> = v.par_iter().map(|x| x * 10).collect();
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn works_on_slices() {
        let v = [5u32, 6];
        let out: Vec<u32> = v.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![6, 7]);
    }

    #[test]
    fn bounded_concurrency_preserves_order() {
        // More items than any plausible parallelism cap: order must hold
        // across chunk boundaries.
        let v: Vec<u64> = (0..257).collect();
        let out: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..257).map(|x| x * 2).collect::<Vec<_>>());
    }
}
