//! Offline stand-in for `rayon`.
//!
//! The experiment harness only uses `par_iter().map(f).collect()` over
//! small config lists, so this shim provides exactly that: a
//! [`prelude::IntoParallelRefIterator`] whose `map(..).collect()`
//! evaluates with `std::thread::scope`, one thread per item, preserving
//! input order. Item counts are the number of experiment configs
//! (single digits to low tens), so thread-per-item is appropriate.

pub mod prelude {
    /// `.par_iter()` on slices and `Vec`s.
    pub trait IntoParallelRefIterator<'data> {
        /// Borrowed item type.
        type Item: Send + Sync + 'data;
        /// Begins a parallel pipeline over `&self`.
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: Send + Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    impl<'data, T: Send + Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    /// A borrowed parallel iterator.
    pub struct ParIter<'data, T> {
        items: &'data [T],
    }

    impl<'data, T: Sync> ParIter<'data, T> {
        /// Maps each item (evaluated on collect).
        pub fn map<F, O>(self, f: F) -> ParMap<'data, T, F>
        where
            F: Fn(&'data T) -> O + Sync,
            O: Send,
        {
            ParMap {
                items: self.items,
                f,
            }
        }
    }

    /// The mapped pipeline.
    pub struct ParMap<'data, T, F> {
        items: &'data [T],
        f: F,
    }

    impl<'data, T: Sync, F> ParMap<'data, T, F> {
        /// Runs the map on scoped threads and collects in input order.
        pub fn collect<C, O>(self) -> C
        where
            F: Fn(&'data T) -> O + Sync,
            O: Send,
            C: FromIterator<O>,
        {
            let f = &self.f;
            let mut results: Vec<Option<O>> = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .items
                    .iter()
                    .map(|item| scope.spawn(move || f(item)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| Some(h.join().expect("parallel task panicked")))
                    .collect()
            });
            results.iter_mut().map(|o| o.take().unwrap()).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn maps_in_order() {
        let v = vec![1u64, 2, 3, 4];
        let out: Vec<u64> = v.par_iter().map(|x| x * 10).collect();
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn works_on_slices() {
        let v = [5u32, 6];
        let out: Vec<u32> = v.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![6, 7]);
    }
}
