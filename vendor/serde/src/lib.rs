//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names as marker traits (with
//! blanket impls so bounds are always satisfiable) and re-exports the
//! no-op derives. Nothing in this workspace serializes at runtime; the
//! derives exist so data types stay annotated for a future swap to the
//! real crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}
