//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` for forward
//! compatibility but never serializes anything at runtime (there is no
//! serde_json or bincode in the dependency graph), so these derives
//! validate and then expand to nothing. The `serde` helper attribute is
//! declared so `#[serde(...)]` field attributes still parse.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
